// Command hostnetsim regenerates the tables and figures of "Understanding
// the Host Network" (SIGCOMM 2024) from the simulator.
//
// Usage:
//
//	hostnetsim [flags] <experiment> [experiment...]
//
// Experiments: table1, fig1, fig2, fig3, fig6, fig7, fig8, fig11, fig12,
// fig13, fig14, fig15, fig16, fig17, fig18, fig19, fig23, fig27, fig29,
// domains, incast, all.
//
// Flags (accepted before or after the experiment names):
//
//	-window   measurement window (default 100us; larger = smoother numbers)
//	-warmup   warmup before measuring (default 20us)
//	-ddio     enable DDIO for the quadrant experiments
//	-hosts    rack size for the incast experiment: N hosts on one ToR,
//	          N-1 senders converging on host 0 (default 4)
//	-parallel worker-pool size for multi-point sweeps (0 = one per CPU,
//	          1 = serial); results are bit-identical at any setting
//	-format   "table" (default, rendered) or "json": the canonical JSON
//	          Result envelope, one NDJSON line per experiment, byte-identical
//	          to hostnetd's result endpoint for the same spec
//	-fidelity "sim" (default, the discrete-event simulator) or "analytic":
//	          answer from the §7 predictive model instead — microseconds
//	          per experiment, supported for the point sweeps only (quadrant,
//	          rdma, hostcc), JSON output only
//	-version  print build identification (module version, VCS revision) and
//	          exit
//	-audit    run every experiment under the invariant auditor: credit
//	          pools are checked for conservation between events and latency
//	          probes cross-checked against direct timestamps; any violation
//	          aborts with the domain, counter, and simulated time
//	-faults   fault schedule for the experiments that honor one (quadrant,
//	          rdma, hostcc, faultsweep): a JSON array of windows, inline or
//	          "@file" (see EXPERIMENTS.md "Fault scenarios"), e.g.
//	          '[{"kind":"pfc_pause_storm","start_ns":30000,"duration_ns":25000}]'
//
// Profiling (see README "Performance & profiling"):
//
//	-cpuprofile file  write a CPU profile for the whole run
//	-memprofile file  write an allocation profile at exit
//	-trace file       write a runtime execution trace
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strings"
	"time"

	"repro/hostnet"
	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/version"
)

func main() {
	// The event loop allocates short-lived closures at a high rate; the
	// default GC target (GOGC=100) spends ~10% of the run in collection
	// cycles for no benefit on a process this small. Respect an explicit
	// GOGC, otherwise trade heap headroom for wall-clock. GC timing cannot
	// affect results — outputs are pinned byte-identical either way.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(800)
	}
	// Profile teardown happens via defers, so the exit code is carried out
	// of realMain instead of calling os.Exit mid-run.
	os.Exit(realMain())
}

func realMain() int {
	window := flag.Duration("window", 100*time.Microsecond, "measurement window (simulated)")
	warmup := flag.Duration("warmup", 20*time.Microsecond, "warmup before measuring (simulated)")
	ddio := flag.Bool("ddio", false, "enable DDIO in quadrant experiments")
	auditOn := flag.Bool("audit", false, "check credit-conservation invariants during every run")
	faultsArg := flag.String("faults", "", "fault schedule: JSON array of windows, or @file")
	csvOut := flag.Bool("csv", false, "emit quadrant experiments as CSV instead of tables")
	format := flag.String("format", "table", "output format: table (rendered) or json (canonical machine-readable)")
	fidelity := flag.String("fidelity", "", "fidelity tier: sim (default) or analytic (predictive model, -format json only)")
	showVersion := flag.Bool("version", false, "print build version and exit")
	parallel := flag.Int("parallel", 0, "sweep worker pool size (0 = GOMAXPROCS, 1 = serial)")
	hosts := flag.Int("hosts", 0, "rack size for the incast experiment (default 4)")
	partitioned := flag.Bool("partitioned", false, "run incast racks as a conservative-parallel DES (per-host engines, ToR-lookahead rounds; no fault injection)")
	fabricWorkers := flag.Int("fabric-workers", 0, "goroutines stepping a partitioned rack's hosts (<= 1 = serial rounds; results are byte-identical at any value)")
	cpuprofile := flag.String("cpuprofile", "", "write CPU profile to `file`")
	memprofile := flag.String("memprofile", "", "write allocation profile to `file` at exit")
	traceOut := flag.String("trace", "", "write runtime execution trace to `file`")
	flag.CommandLine.Parse(reorderArgs(os.Args[1:]))
	emitCSV = *csvOut

	if *showVersion {
		fmt.Println("hostnetsim", version.Get())
		return 0
	}
	if *format != "table" && *format != "json" {
		fmt.Fprintf(os.Stderr, "unknown -format %q (valid: table, json)\n", *format)
		return 2
	}
	switch *fidelity {
	case "", hostnet.FidelitySim, hostnet.FidelityAnalytic:
	default:
		fmt.Fprintf(os.Stderr, "unknown -fidelity %q (valid: sim, analytic)\n", *fidelity)
		return 2
	}
	if *fidelity == hostnet.FidelityAnalytic && *format != "json" {
		fmt.Fprintln(os.Stderr, "-fidelity analytic emits []AnalyticPoint, which has no table rendering; use -format json")
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			return 1
		}
		defer f.Close()
		if err := rtrace.Start(f); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			return 1
		}
		defer rtrace.Stop()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date allocation statistics
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}()
	}

	opt := hostnet.DefaultOptions()
	opt.Window = sim.Time(window.Nanoseconds()) * sim.Nanosecond
	opt.Warmup = sim.Time(warmup.Nanoseconds()) * sim.Nanosecond
	opt.DDIO = *ddio
	opt.Parallelism = *parallel
	if *auditOn {
		opt.Audit = true
	}
	faults, err := parseFaults(*faultsArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "-faults:", err)
		return 2
	}
	opt.Faults = faults
	opt.FabricWorkers = *fabricWorkers
	fabricHosts = *hosts
	fabricPartitioned = *partitioned

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: hostnetsim [flags] <experiment>...")
		fmt.Fprintln(os.Stderr, "experiments: table1 fig1 fig2 fig3 fig6 fig7 fig8 fig11 fig12 fig13 fig14")
		fmt.Fprintln(os.Stderr, "             fig15 fig16 fig17 fig18 fig19 fig23 fig27 fig29 domains")
		fmt.Fprintln(os.Stderr, "             prefetch hostcc mcisolation ratio cxl faultsweep incast crossval all")
		return 2
	}
	if *format == "json" {
		return runJSON(opt, *window, *warmup, *ddio, *fidelity, args)
	}
	for _, a := range args {
		if a == "all" {
			return run(opt, "table1", "fig3", "fig6", "fig7", "fig8", "fig11", "fig13", "fig14",
				"fig1", "fig2", "fig15", "fig16", "fig17", "fig18", "fig19", "fig23", "fig27", "fig29")
		}
	}
	return run(opt, args...)
}

var emitCSV bool

// fabricHosts carries the -hosts flag to the incast experiment (0 = the
// spec's default rack of 4).
var fabricHosts int

// fabricPartitioned carries the -partitioned flag: incast racks run as a
// conservative-parallel DES (a spec-level mode, since its discretization
// differs from the shared-engine rack).
var fabricPartitioned bool

// runJSON emits the canonical JSON Result envelope for each named
// experiment, one NDJSON line per name — byte-identical to hostnetd's
// result endpoint for the same spec (both route through exp.RunSpecJSON).
func runJSON(opt hostnet.Options, window, warmup time.Duration, ddio bool, fidelity string, names []string) int {
	if len(names) == 1 && names[0] == "all" {
		names = exp.Experiments()
	}
	for _, name := range names {
		spec := hostnet.JobSpec{
			Experiment: name,
			WindowNs:   window.Nanoseconds(),
			WarmupNs:   warmup.Nanoseconds(),
			DDIO:       ddio,
			Faults:     opt.Faults,
			Fidelity:   fidelity,
		}
		if name == "incast" && (fabricHosts > 0 || fabricPartitioned) {
			spec.Fabric = &hostnet.FabricSpec{Hosts: fabricHosts, Partitioned: fabricPartitioned}
		}
		b, err := exp.RunSpecJSON(spec, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			return 1
		}
		os.Stdout.Write(b)
		os.Stdout.Write([]byte("\n"))
	}
	return 0
}

func run(opt hostnet.Options, names ...string) int {
	w := os.Stdout
	for _, name := range names {
		switch name {
		case "table1":
			hostnet.RenderTable1(w)
		case "fig3":
			res := hostnet.RunFig3(opt)
			if emitCSV {
				for _, q := range []hostnet.Quadrant{hostnet.Q1, hostnet.Q2, hostnet.Q3, hostnet.Q4} {
					if err := exp.QuadrantCSV(res[q]).WriteCSV(w); err != nil {
						fmt.Fprintln(os.Stderr, err)
						return 1
					}
				}
			} else {
				hostnet.RenderQuadrants(w, res)
			}
		case "fig6", "domains":
			hostnet.RenderDomainEvidence(w, hostnet.RunFig6(opt))
			for _, d := range hostnet.CascadeLakeDomains() {
				fmt.Fprintln(w, d)
			}
			fmt.Fprintln(w)
		case "fig7":
			exp.RenderQuadrantProbes(w, "Fig 7: quadrant 1 root causes",
				exp.RunQuadrant(exp.Q1, exp.DefaultCoreSweep(), opt))
		case "fig8":
			exp.RenderQuadrantProbes(w, "Fig 8: quadrant 3 root causes",
				exp.RunQuadrant(exp.Q3, exp.DefaultCoreSweep(), opt))
		case "fig13":
			exp.RenderQuadrantProbes(w, "Fig 13: quadrant 2 root causes",
				exp.RunQuadrant(exp.Q2, exp.DefaultCoreSweep(), opt))
		case "fig14":
			exp.RenderQuadrantProbes(w, "Fig 14: quadrant 4 root causes",
				exp.RunQuadrant(exp.Q4, exp.DefaultCoreSweep(), opt))
		case "fig11", "fig12":
			hostnet.RenderFormula(w, hostnet.RunFig11(opt))
		case "fig1":
			res := hostnet.RunFig1(opt)
			exp.RenderApps(w, "Fig 1: Redis/GAPBS + FIO on Ice Lake (DDIO on)",
				map[string][]exp.AppPoint{"Redis": res.Redis, "GAPBS-PR": res.GAPBS})
		case "fig2":
			res := hostnet.RunFig2(opt)
			exp.RenderApps(w, "Fig 2: DDIO on/off on Cascade Lake", map[string][]exp.AppPoint{
				"Redis(on)": res.RedisOn, "Redis(off)": res.RedisOff,
				"GAPBS(on)": res.GAPBSOn, "GAPBS(off)": res.GAPBSOff,
			})
		case "fig15":
			renderGrid(w, hostnet.RunFig15(opt))
		case "fig16":
			renderGrid(w, hostnet.RunFig16(opt))
		case "fig17":
			renderGrid(w, hostnet.RunFig17(opt))
		case "fig18", "fig20", "fig21", "fig22", "fig24":
			hostnet.RenderRDMA(w, hostnet.RunFig18(opt))
		case "fig19", "fig25", "fig26":
			read, rw := hostnet.RunFig19(opt)
			hostnet.RenderDCTCP(w, read, rw)
		case "fig23":
			pts := hostnet.RunRDMAQuadrant(hostnet.Q3, []int{4, 5, 6}, opt)
			for _, p := range pts {
				fmt.Fprintf(w, "Fig 23: RDMA Q3 cores=%d pause=%.2f  us-scale IIO occupancy: %v\n",
					p.Cores, p.PauseFrac, head(p.IIOOccSamples, 40))
			}
			fmt.Fprintln(w)
		case "fig27", "fig28":
			hostnet.RenderFormula(w, hostnet.RunFig27(opt))
		case "fig29", "fig30":
			read, rw := hostnet.RunFig29(opt)
			renderDCTCPFormula(w, read, rw)
		case "prefetch":
			s := hostnet.RunPrefetchStudy(2, opt)
			fmt.Fprintf(w, "prefetch study (2 C2M-Read cores + P2M-Write):\n")
			fmt.Fprintf(w, "  isolated:  %.1f -> %.1f GB/s with prefetching\n", s.IsoOff/1e9, s.IsoOn/1e9)
			fmt.Fprintf(w, "  colocated: %.1f -> %.1f GB/s with prefetching\n", s.CoOff/1e9, s.CoOn/1e9)
			fmt.Fprintf(w, "  degradation ratio: %.2fx off vs %.2fx on (roughly unchanged)\n\n",
				s.DegradationOff(), s.DegradationOn())
		case "cxl":
			cfg := hostnet.CascadeLake()
			cfg.Audit = hostnet.AuditConfig{Enabled: opt.Audit, FailFast: true}
			iso := hostnet.NewWithCXL(cfg, hostnet.DefaultCXLConfig())
			iso.AddCore(hostnet.SeqRead(iso.CXLRegion(1<<30), 1<<30))
			iso.Run(opt.Warmup, opt.Window)
			co := hostnet.NewWithCXL(cfg, hostnet.DefaultCXLConfig())
			co.AddCore(hostnet.SeqRead(co.CXLRegion(1<<30), 1<<30))
			co.AddStorage(hostnet.BulkStorage(hostnet.DMAWrite, co.Region(1<<30)))
			co.Run(opt.Warmup, opt.Window)
			fmt.Fprintf(w, "CXL.mem expander (latency-for-isolation trade):\n")
			fmt.Fprintf(w, "  CXL-homed reads: %.0f ns, %.2f GB/s (DRAM-homed: ~71 ns, ~10.8 GB/s)\n",
				iso.Cores[0].Stats().LFBLat.AvgNanos(), iso.C2MBW()/1e9)
			fmt.Fprintf(w, "  colocated with host-DRAM P2M writes: %.0f ns (untouched), P2M %.2f GB/s (untouched)\n\n",
				co.Cores[0].Stats().LFBLat.AvgNanos(), co.P2MBW()/1e9)
		case "ratio":
			pts := exp.RunRatioSweep(5, []float64{0, 0.25, 0.5, 0.75, 1.0}, opt)
			t := exp.Table{
				Title:  "write-ratio sweep: the continuous blue->red transition (5 C2M cores + P2M-Write)",
				Header: []string{"writeFrac", "C2M degr", "P2M degr", "WPQ full", "backlog"},
			}
			for _, p := range pts {
				t.Add(fmt.Sprintf("%.2f", p.WriteFrac), fmt.Sprintf("%.2fx", p.C2MDegradation()),
					fmt.Sprintf("%.2fx", p.P2MDegradation()), fmt.Sprintf("%.2f", p.WPQFullFrac),
					fmt.Sprintf("%.1f", p.WBacklog))
			}
			t.Render(w)
		case "mcisolation":
			s := exp.RunMCIsolationStudy(5, 16, opt)
			fmt.Fprintf(w, "MC isolation via WPQ reservation (red regime, Q3 with 5 cores, reserve=16):\n")
			fmt.Fprintf(w, "  P2M degradation: %.2fx -> %.2fx\n", s.P2MDegrOff(), s.P2MDegrOn())
			fmt.Fprintf(w, "  C2M degradation: %.2fx -> %.2fx\n\n", s.C2MDegrOff(), s.C2MDegrOn())
		case "incast":
			fs := hostnet.FabricSpec{Hosts: fabricHosts, Partitioned: fabricPartitioned}
			if err := fs.Validate(); err != nil {
				fmt.Fprintln(os.Stderr, "-hosts:", err)
				return 2
			}
			if fs.Partitioned && len(opt.Faults) > 0 {
				fmt.Fprintln(os.Stderr, "-partitioned: partitioned racks do not support fault injection")
				return 2
			}
			s := hostnet.RunIncast(fs, 4, opt.Faults, opt)
			if emitCSV {
				if err := exp.IncastCSV(s).WriteCSV(w); err != nil {
					fmt.Fprintln(os.Stderr, err)
					return 1
				}
			} else {
				hostnet.RenderIncast(w, s)
			}
		case "faultsweep":
			sched := opt.Faults
			if len(sched) == 0 {
				sched = exp.DefaultFaultSchedule(int64(opt.Warmup/sim.Nanosecond), int64(opt.Window/sim.Nanosecond))
			}
			renderFaultSweep(w, hostnet.RunFaultSweep(hostnet.Q3, []int{2, 4, 6}, sched, opt))
		case "crossval":
			cv, err := exp.RunCrossval(exp.Q1, exp.DefaultCoreSweep(), opt)
			if err != nil {
				fmt.Fprintln(os.Stderr, "crossval:", err)
				return 1
			}
			renderCrossval(w, cv)
		case "hostcc":
			s := hostnet.RunHostCCStudy(hostnet.Q3, 5, hostnet.DefaultHostCCConfig(), opt)
			fmt.Fprintf(w, "hostCC-style mitigation (red regime, Q3 with 5 cores):\n")
			fmt.Fprintf(w, "  P2M degradation: %.2fx -> %.2fx\n", s.P2MDegrOff(), s.P2MDegrOn())
			fmt.Fprintf(w, "  C2M degradation: %.2fx -> %.2fx\n", s.C2MDegrOff(), s.C2MDegrOn())
			fmt.Fprintf(w, "  congested %.0f%% of intervals, avg throttle %.0f ns\n\n",
				s.CongestedFrac*100, s.AvgGapNanos)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			return 2
		}
	}
	return 0
}

func renderGrid(w *os.File, g exp.AppGridResult) {
	exp.RenderApps(w, fmt.Sprintf("Appendix B %s", g.Fig), map[string][]exp.AppPoint{
		"Redis(on)": g.RedisOn, "Redis(off)": g.RedisOff,
		"GAPBS(on)": g.GAPBSOn, "GAPBS(off)": g.GAPBSOff,
	})
}

func renderDCTCPFormula(w *os.File, read, rw []exp.DCTCPFormulaPoint) {
	t := exp.Table{
		Title:  "Fig 29: formula error in the TCP case study (%)",
		Header: []string{"case", "cores", "mem err", "net C2M err", "net P2M err"},
	}
	for _, f := range read {
		t.Add("C2MRead", f.C2MCores, fmt.Sprintf("%+.1f", f.MemErrPct),
			fmt.Sprintf("%+.1f", f.NetC2MErrPct), fmt.Sprintf("%+.1f", f.NetP2MErrPct))
	}
	for _, f := range rw {
		t.Add("C2MReadWrite", f.C2MCores, fmt.Sprintf("%+.1f", f.MemErrPct),
			fmt.Sprintf("%+.1f", f.NetC2MErrPct), fmt.Sprintf("%+.1f", f.NetP2MErrPct))
	}
	t.Render(w)
}

func renderCrossval(w *os.File, cv *exp.CrossvalResult) {
	t := exp.Table{
		Title: fmt.Sprintf("crossval: analytic vs sim, quadrant %d (envelope ±%.0f%%)",
			cv.Quadrant, float64(exp.CrossvalEnvelopePct)),
		Header: []string{"cores", "sim C2M", "pred C2M", "BW err", "sim L", "pred L", "L err"},
	}
	for _, p := range cv.Points {
		t.Add(p.Cores,
			fmt.Sprintf("%.1f GB/s", p.SimC2MBytesPerSec/1e9),
			fmt.Sprintf("%.1f GB/s", p.PredC2MBytesPerSec/1e9),
			fmt.Sprintf("%+.1f%%", p.BWErrPct),
			fmt.Sprintf("%.0f ns", p.SimC2MReadLatencyNs),
			fmt.Sprintf("%.0f ns", p.PredC2MReadLatencyNs),
			fmt.Sprintf("%+.1f%%", p.LatErrPct))
	}
	t.Render(w)
}

func renderFaultSweep(w *os.File, s *exp.FaultSweep) {
	fmt.Fprintf(w, "fault sweep (RDMA quadrant %d under %d fault windows):\n", s.Quadrant, len(s.Schedule))
	for _, f := range s.Schedule {
		fmt.Fprintf(w, "  %-18s start=%dns dur=%dns mag=%.2g ch=%d bank=%d\n",
			f.Kind, f.StartNs, f.DurationNs, f.Magnitude, f.Channel, f.Bank)
	}
	t := exp.Table{
		Title: "healthy vs faulted degradation",
		Header: []string{"cores", "C2M degr", "C2M faulted", "P2M degr", "P2M faulted",
			"pause", "pause faulted"},
	}
	for _, p := range s.Points {
		t.Add(p.Cores,
			fmt.Sprintf("%.2fx", p.Healthy.C2MDegradation()), fmt.Sprintf("%.2fx", p.Faulted.C2MDegradation()),
			fmt.Sprintf("%.2fx", p.Healthy.P2MDegradation()), fmt.Sprintf("%.2fx", p.Faulted.P2MDegradation()),
			fmt.Sprintf("%.2f", p.Healthy.PauseFrac), fmt.Sprintf("%.2f", p.Faulted.PauseFrac))
	}
	t.Render(w)
}

// parseFaults decodes the -faults argument: empty, inline JSON, or @file.
func parseFaults(arg string) (hostnet.FaultSchedule, error) {
	if arg == "" {
		return nil, nil
	}
	data := []byte(arg)
	if strings.HasPrefix(arg, "@") {
		b, err := os.ReadFile(arg[1:])
		if err != nil {
			return nil, err
		}
		data = b
	}
	var s hostnet.FaultSchedule
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("decoding fault schedule: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s.Normalized(), nil
}

func head(xs []int, n int) []int {
	if len(xs) > n {
		return xs[:n]
	}
	return xs
}

// boolFlags are the flags that take no value argument; every other flag
// consumes the following token when written as "-flag value".
var boolFlags = map[string]bool{"ddio": true, "csv": true, "audit": true, "version": true, "partitioned": true}

// reorderArgs moves flag tokens ahead of experiment names so that
// "hostnetsim fig3 -parallel 8" works; the standard flag package stops
// parsing at the first positional argument.
func reorderArgs(args []string) []string {
	var flags, pos []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		if !strings.HasPrefix(a, "-") || a == "-" || a == "--" {
			pos = append(pos, a)
			continue
		}
		flags = append(flags, a)
		name := strings.TrimLeft(a, "-")
		if eq := strings.IndexByte(name, '='); eq >= 0 {
			continue // -flag=value is self-contained
		}
		if !boolFlags[name] && i+1 < len(args) {
			i++
			flags = append(flags, args[i])
		}
	}
	return append(flags, pos...)
}
