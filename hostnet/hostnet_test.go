package hostnet_test

import (
	"strings"
	"testing"

	"repro/hostnet"
)

// The public API end to end: the quickstart flow must reproduce the blue
// regime without touching internal packages.
func TestPublicAPIQuickstart(t *testing.T) {
	iso := hostnet.New(hostnet.CascadeLake())
	iso.AddCore(hostnet.SeqRead(iso.Region(1<<30), 1<<30))
	iso.Run(20*hostnet.Microsecond, 60*hostnet.Microsecond)
	isoBW := iso.C2MReadBW()

	h := hostnet.New(hostnet.CascadeLake())
	h.AddCore(hostnet.SeqRead(h.Region(1<<30), 1<<30))
	h.AddStorage(hostnet.BulkStorage(hostnet.DMAWrite, h.Region(1<<30)))
	h.Run(20*hostnet.Microsecond, 60*hostnet.Microsecond)

	degr := isoBW / h.C2MReadBW()
	if got := hostnet.Classify(degr, 1.0); got != hostnet.Blue {
		t.Fatalf("quickstart regime = %v (degr %.2fx), want blue", got, degr)
	}
	if h.P2MBW() < 13e9 {
		t.Fatalf("P2M bw %.1f GB/s", h.P2MBW()/1e9)
	}
}

func TestPublicDomainsAndExplain(t *testing.T) {
	ds := hostnet.CascadeLakeDomains()
	if ds[0].Kind != hostnet.C2MRead || ds[3].Kind != hostnet.P2MWrite {
		t.Fatalf("domain ordering wrong")
	}
	m := hostnet.Measurement{Kind: hostnet.C2MRead, AvgLatencyNanos: 91, MaxCreditsInUse: 12, AvgCreditsInUse: 12}
	u := hostnet.Measurement{Kind: hostnet.C2MRead, AvgLatencyNanos: 70}
	if s := hostnet.Explain(ds[0], m, u); !strings.Contains(s, "credits saturated") {
		t.Fatalf("Explain = %q", s)
	}
}

func TestPublicWorkloadConstructors(t *testing.T) {
	h := hostnet.New(hostnet.CascadeLake())
	h.AddCore(hostnet.SeqReadWrite(h.Region(1<<30), 1<<30))
	h.AddCore(hostnet.RandRead(h.Region(1<<30), 1<<30, 7))
	h.AddCore(hostnet.MixedRandom(h.Region(1<<30), 1<<30, 0.2, 10*hostnet.Nanosecond, 9))
	h.Run(10*hostnet.Microsecond, 20*hostnet.Microsecond)
	if h.C2MBW() <= 0 {
		t.Fatalf("no progress through public constructors")
	}
}

func TestPublicPrefetcherAndHostCC(t *testing.T) {
	cfg := hostnet.CascadeLake()
	cfg.Core.Prefetch = hostnet.DefaultPrefetcher()
	h := hostnet.New(cfg)
	h.AddCore(hostnet.SeqRead(h.Region(1<<30), 1<<30))
	ctl := hostnet.NewHostCC(h, hostnet.DefaultHostCCConfig())
	ctl.Start(0)
	h.Run(10*hostnet.Microsecond, 30*hostnet.Microsecond)
	if h.C2MBW() <= 11e9 {
		t.Fatalf("prefetch-enabled core at %.1f GB/s, want above the non-prefetch ~10.8", h.C2MBW()/1e9)
	}
	if ctl.Congested.Frac() != 0 {
		t.Fatalf("controller congested with no P2M traffic")
	}
}

func TestRenderHelpers(t *testing.T) {
	var sb strings.Builder
	hostnet.RenderTable1(&sb)
	if !strings.Contains(sb.String(), "CascadeLake") {
		t.Fatalf("table1 render missing content")
	}
}
