package hostnet

import (
	"context"

	"repro/internal/exp"
)

// JobSpec is the machine-readable description of one experiment job — the
// public currency of the hostnetd daemon and `hostnetsim -format json`.
// Sweeps are deterministic and bit-identical at any parallelism, so a
// JobSpec fully determines its result; hostnetd content-addresses results
// by JobSpec.Hash (SHA-256 of the canonical encoding) and serves repeated
// or concurrent identical submissions from one underlying simulation.
type JobSpec = exp.Spec

// JobResult is the JSON envelope a completed job produces: the normalized
// spec followed by the experiment's structured result.
type JobResult = exp.Result

// JobExperiments lists the experiment names a JobSpec may carry.
func JobExperiments() []string { return exp.Experiments() }

// RunJob executes a job spec with the given execution options and returns
// the experiment's structured result (the same value the typed Run*
// functions return). The result depends only on the spec; opt supplies
// execution-only behavior (parallelism, audit, cancellation, progress).
func RunJob(spec JobSpec, opt Options) (any, error) { return exp.RunSpec(spec, opt) }

// RunJobJSON executes a job spec and returns the canonical JSON JobResult
// bytes — byte-identical across the CLI, the daemon, repeat runs, and any
// parallelism setting.
func RunJobJSON(spec JobSpec, opt Options) ([]byte, error) { return exp.RunSpecJSON(spec, opt) }

// NewJobResultValue returns a pointer to the zero value of the experiment's
// concrete result type, for decoding a JobResult payload back into typed
// form (nil for unknown experiment names).
func NewJobResultValue(experiment string) any { return exp.NewResultValue(experiment) }

// WithContext returns opt bounded by ctx: once ctx is done, multi-point
// sweeps stop launching new points and surface the cancellation. An
// individual simulation point is never interrupted mid-run.
func WithContext(opt Options, ctx context.Context) Options {
	opt.BaseCtx = ctx
	return opt
}

// SplitJob splits a multi-point sweep spec into one independently
// content-addressed sub-spec per sweep point, in sweep order, or returns
// nil when the spec is not splittable (single points, fixed figures, and
// sweeps whose points depend on their index). Running the sub-specs
// anywhere and merging with MergeJobResults reproduces the single-node
// bytes exactly — the contract the fleet coordinator is built on.
func SplitJob(spec JobSpec) []JobSpec { return spec.Points() }

// MergeJobResults reassembles the per-point JobResult bytes produced by
// running each of SplitJob's sub-specs (in order) into bytes identical to
// a single-node RunJobJSON of the parent spec. Each part is verified
// against its expected sub-spec hash first.
func MergeJobResults(spec JobSpec, parts [][]byte) ([]byte, error) {
	return exp.MergePointResults(spec, parts)
}
