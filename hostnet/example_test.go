package hostnet_test

import (
	"fmt"

	"repro/hostnet"
)

// The quickstart flow: build the Cascade Lake host, colocate a memory-bound
// app with a storage workload, and classify the outcome through the domain
// lens. Deterministic, so the output is exact.
func Example() {
	iso := hostnet.New(hostnet.CascadeLake())
	iso.AddCore(hostnet.SeqRead(iso.Region(1<<30), 1<<30))
	iso.Run(20*hostnet.Microsecond, 100*hostnet.Microsecond)

	h := hostnet.New(hostnet.CascadeLake())
	h.AddCore(hostnet.SeqRead(h.Region(1<<30), 1<<30))
	h.AddStorage(hostnet.BulkStorage(hostnet.DMAWrite, h.Region(1<<30)))
	h.Run(20*hostnet.Microsecond, 100*hostnet.Microsecond)

	degr := iso.C2MReadBW() / h.C2MReadBW()
	fmt.Printf("C2M degradation: %.2fx\n", degr)
	fmt.Printf("P2M throughput:  %.1f GB/s\n", h.P2MBW()/1e9)
	fmt.Printf("regime: %v\n", hostnet.Classify(degr, 1.0))
	// Output:
	// C2M degradation: 1.27x
	// P2M throughput:  14.0 GB/s
	// regime: blue
}
