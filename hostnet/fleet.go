package hostnet

import (
	"repro/internal/fleet"
	"repro/internal/store"
)

// Fleet-scale serving re-exports. A ResultStore persists job results on
// disk by content address (JobSpec SHA-256 -> checksummed bytes) so a
// daemon restart — or a whole fleet sharing one directory — serves past
// results without re-simulating. A FleetCoordinator shards splittable
// sweep specs point-by-point across worker hostnetds over the ordinary
// HTTP API and merges the answers into bytes identical to a single-node
// run. Both lean on the same guarantee: a JobSpec fully determines its
// result bytes, so replication needs no coherence and duplicate dispatch
// is harmless.
type (
	// ResultStore is the persistent content-addressed result store
	// (crash-atomic writes, checksum-verified reads, byte-capped GC).
	ResultStore = store.Store
	// StoreConfig tunes a ResultStore.
	StoreConfig = store.Config
	// StoreStats is a point-in-time snapshot of a store's counters.
	StoreStats = store.Stats
	// FleetCoordinator fans sweeps out to a pool of worker hostnetds.
	FleetCoordinator = fleet.Coordinator
	// FleetConfig tunes a FleetCoordinator (workers, attempt budget,
	// steal threshold).
	FleetConfig = fleet.Config
	// FleetWorker names one worker daemon (base URL + in-flight bound).
	FleetWorker = fleet.Worker
	// FleetWorkerStats is one worker's dispatch counters.
	FleetWorkerStats = fleet.WorkerStats
)

// OpenStore opens (creating if needed) a persistent result store rooted at
// dir. Interrupted writes are swept, damaged entries are quarantined on
// read, and the index is rebuilt by directory scan — no journal.
func OpenStore(dir string, cfg StoreConfig) (*ResultStore, error) { return store.Open(dir, cfg) }

// NewFleet builds a sharding coordinator over the configured worker pool.
func NewFleet(cfg FleetConfig) (*FleetCoordinator, error) { return fleet.New(cfg) }
