package hostnet

// The analytic fidelity tier, re-exported: the §7 predictive model
// (configuration in, throughput and latency out, microseconds per answer)
// as a public API, plus the JobSpec plumbing that routes a spec to it.
// Setting JobSpec.Fidelity = FidelityAnalytic makes RunJob answer from the
// model instead of the simulator — and makes hostnetd answer inline,
// bypassing its queue. Specs outside the model's domain (fixed figures,
// fabrics, faults, uncalibrated presets) fail with a typed
// *analytic.UnsupportedError the daemon maps to HTTP 422.

import (
	"repro/internal/analytic"
	"repro/internal/exp"
)

// Fidelity values for JobSpec.Fidelity. Absent and FidelitySim are the
// same tier (the discrete-event simulator) and hash to the same content
// address; FidelityAnalytic selects the predictive model and hashes
// distinctly.
const (
	FidelitySim      = exp.FidelitySim
	FidelityAnalytic = exp.FidelityAnalytic
)

// CrossvalEnvelopePct is the pinned analytic-vs-sim error envelope on
// colocated C2M bandwidth (percent).
const CrossvalEnvelopePct = exp.CrossvalEnvelopePct

type (
	// HWConfig parameterizes the predictive model's platform.
	HWConfig = analytic.HWConfig
	// Workload describes the offered load the model predicts under.
	Workload = analytic.Workload
	// Prediction is the model's answer for one (HWConfig, Workload).
	Prediction = analytic.Prediction

	// AnalyticPoint is one (quadrant, cores) answer from the model — the
	// analytic tier's counterpart of QuadrantPoint.
	AnalyticPoint = exp.AnalyticPoint
	// CrossvalPoint compares the two fidelity tiers at one configuration.
	CrossvalPoint = exp.CrossvalPoint
	// CrossvalResult is the "crossval" experiment's payload.
	CrossvalResult = exp.CrossvalResult
)

var (
	// Predict evaluates the §7 model directly.
	Predict = analytic.Predict
	// CascadeLakeHW is the calibrated default platform.
	CascadeLakeHW = analytic.CascadeLakeHW
	// RunCrossval runs a quadrant sweep on both tiers and reports the
	// analytic error per point.
	RunCrossval = exp.RunCrossval
)

// NewJobSpecResultValue is the fidelity-aware variant of
// NewJobResultValue: for an analytic-fidelity spec the payload is
// []AnalyticPoint regardless of experiment; otherwise it defers to the
// experiment's sim result type.
func NewJobSpecResultValue(spec JobSpec) any { return exp.NewSpecResultValue(spec) }
