// Package hostnet is the public API of the host-network simulator — a
// reproduction of "Understanding the Host Network" (SIGCOMM 2024).
//
// The library decomposes a server host into the components of the paper's
// §3 — cores with Line Fill Buffers, the CHA/LLC, a DDR4 memory controller
// with per-channel read/write pending queues, DRAM banks, the IIO and PCIe
// link, and peripheral devices — and simulates data movement at cacheline
// granularity under domain-by-domain credit-based flow control (§4).
//
// # Quick start
//
//	h := hostnet.New(hostnet.CascadeLake())
//	h.AddCore(hostnet.SeqRead(h.Region(1<<30), 1<<30)) // a C2M-Read app
//	h.AddStorage(hostnet.BulkStorage(hostnet.DMAWrite, h.Region(1<<30)))
//	h.Run(20*hostnet.Microsecond, 100*hostnet.Microsecond)
//	fmt.Println(h.C2MBW(), h.P2MBW()) // colocated throughputs
//
// Experiments reproducing every figure and table of the paper live behind
// the Run* functions (RunFig3, RunFig6, RunFig11, ...); cmd/hostnetsim
// exposes them on the command line.
package hostnet

import (
	"io"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/cxl"
	"repro/internal/exp"
	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/host"
	"repro/internal/hostcc"
	"repro/internal/mem"
	"repro/internal/numa"
	"repro/internal/periph"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Re-exported fundamental types.
type (
	// Time is simulated time in picoseconds.
	Time = sim.Time
	// Addr is a physical byte address.
	Addr = mem.Addr
	// Config describes a host (use CascadeLake/IceLake for the paper's
	// testbeds).
	Config = host.Config
	// Host is an assembled host network.
	Host = host.Host
	// Generator supplies a core's access stream.
	Generator = cpu.Generator
	// StorageConfig describes a FIO-style device workload.
	StorageConfig = periph.Config
	// Domain is the paper's credit-based flow-control domain abstraction.
	Domain = core.Domain
	// DomainKind names one of the four domains.
	DomainKind = core.DomainKind
	// Measurement is a domain's observed behaviour over a window.
	Measurement = core.Measurement
	// Regime classifies a colocation outcome (blue/red).
	Regime = core.Regime
	// Options configure an experiment run.
	Options = exp.Options
	// Quadrant identifies a §2.2 colocation scenario.
	Quadrant = exp.Quadrant
	// Prefetcher is the per-core hardware stream prefetcher template.
	Prefetcher = cpu.Prefetcher
	// HostCC is the in-host congestion controller (the paper's §7 future-
	// work direction, in the spirit of hostCC/SIGCOMM'23).
	HostCC = hostcc.Controller
	// HostCCConfig tunes the controller.
	HostCCConfig = hostcc.Config
	// DualHost is a two-socket host joined by a UPI-style interconnect (the
	// paper's §7 "multiple sockets" extension).
	DualHost = host.DualHost
	// UPIConfig models the socket interconnect.
	UPIConfig = numa.Config
	// CXLConfig models a CXL.mem expander and its link (§7 "new
	// interconnects").
	CXLConfig = cxl.Config
	// AuditConfig tunes the invariant auditor (Config.Audit). The zero
	// value disables auditing at zero overhead; set Enabled to have every
	// credit domain check conservation between events and cross-check its
	// latency probes against direct per-request timestamps at end of window.
	AuditConfig = audit.Config
	// AuditViolation is one detected invariant breach, attributed to the
	// owning domain and counter at a simulated timestamp.
	AuditViolation = audit.Violation
	// Auditor collects violations (or panics, under FailFast); reach it via
	// Host.Auditor / DualHost.Auditor.
	Auditor = audit.Auditor
	// FaultKind names a fault-injection mechanism (see the Fault* consts).
	FaultKind = fault.Kind
	// FaultWindow is one transient fault: a (start, duration, magnitude)
	// interval over one credit domain, in absolute simulated nanoseconds
	// from engine start.
	FaultWindow = fault.Window
	// FaultSchedule is a set of fault windows (Config.Faults /
	// Options.Faults); empty means a healthy run at zero overhead.
	FaultSchedule = fault.Schedule
	// FaultInjector schedules a FaultSchedule's windows through a host's
	// engine; reach it via Host.Faults / DualHost.Faults.
	FaultInjector = fault.Injector
	// Snapshot is an opaque capture of one engine's full simulation state
	// (clock, event heap, every credit domain, telemetry windows, RNG
	// streams, fault injector). Host.Snapshot and Fabric.Snapshot return
	// one; restoring it on the same host/fabric rewinds the run, and a
	// restored-then-continued run is byte-identical to a straight one.
	Snapshot = sim.Snapshot
	// Fabric is a rack: N hosts and their NICs connected through a ToR
	// switch, all on one shared event engine (so fabric runs keep the
	// single-host determinism guarantees).
	Fabric = fabric.Fabric
	// ParallelFabric is the conservative-parallel rack: every host on a
	// private engine, advanced in ToR-lookahead rounds, byte-identical at
	// any worker count.
	ParallelFabric = fabric.Parallel
	// ParallelSnapshot captures a ParallelFabric at a round boundary.
	ParallelSnapshot = fabric.ParallelSnapshot
	// FabricConfig describes a rack (hosts, per-host config, NIC, ToR).
	FabricConfig = fabric.Config
	// FabricNICConfig models a host's fabric attachment (line rate, RX
	// buffer, PFC thresholds).
	FabricNICConfig = fabric.NICConfig
	// SwitchConfig models the ToR (port speed, queue caps, forwarding
	// latency, PFC thresholds).
	SwitchConfig = fabric.SwitchConfig
	// NodeID addresses a host Al-Fares style (10.pod.edge.host), leaving
	// room for a fat-tree above the single ToR.
	NodeID = fabric.NodeID
	// FabricSpec is the JobSpec's fabric section: rack shape and traffic
	// pattern, normalized so fabric scenarios stay content-addressable.
	FabricSpec = exp.FabricSpec
	// FlowSpec is one entry of a FabricSpec flow matrix.
	FlowSpec = exp.FlowSpec
	// IncastPoint is one rack-scale incast measurement.
	IncastPoint = exp.IncastPoint
	// IncastSweep is the incast experiment result (healthy points plus
	// faulted twins when a schedule is given).
	IncastSweep = exp.IncastSweep
)

// Fault kinds.
const (
	FaultLinkFlap     = fault.LinkFlap
	FaultPauseStorm   = fault.PauseStorm
	FaultDRAMThrottle = fault.DRAMThrottle
	FaultBankOffline  = fault.BankOffline
	FaultIIOStarve    = fault.IIOStarve
	FaultLaneDegrade  = fault.LaneDegrade
)

// Time units.
const (
	Picosecond  = sim.Picosecond
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Domains.
const (
	C2MRead  = core.C2MRead
	C2MWrite = core.C2MWrite
	P2MRead  = core.P2MRead
	P2MWrite = core.P2MWrite
)

// Regimes.
const (
	NoContention = core.NoContention
	Blue         = core.Blue
	Red          = core.Red
)

// Quadrants.
const (
	Q1 = exp.Q1
	Q2 = exp.Q2
	Q3 = exp.Q3
	Q4 = exp.Q4
)

// DMA directions for storage workloads.
const (
	// DMAWrite models storage reads: the device writes host memory.
	DMAWrite = periph.DMAWrite
	// DMARead models storage writes: the device reads host memory.
	DMARead = periph.DMARead
)

// CascadeLake returns the Table 1 Cascade Lake preset.
func CascadeLake() Config { return host.CascadeLake() }

// IceLake returns the Table 1 Ice Lake preset.
func IceLake() Config { return host.IceLake() }

// New assembles a host.
func New(cfg Config) *Host { return host.New(cfg) }

// NewDual assembles a two-socket host with the given per-socket config.
func NewDual(cfg Config, upi UPIConfig) *DualHost { return host.NewDual(cfg, upi) }

// DefaultUPIConfig returns a ~40 ns, ~20 GB/s-per-direction socket link.
func DefaultUPIConfig() UPIConfig { return numa.DefaultConfig() }

// NewWithCXL assembles a host with a CXL.mem expander; allocate expander-
// homed buffers with the host's CXLRegion.
func NewWithCXL(cfg Config, cxlCfg CXLConfig) *Host { return host.NewWithCXL(cfg, cxlCfg) }

// DefaultCXLConfig returns a single-channel expander behind a ~32 GB/s,
// ~85 ns-one-way link (unloaded reads ~210-250 ns).
func DefaultCXLConfig() CXLConfig { return cxl.DefaultConfig() }

// SeqRead returns the paper's C2M-Read workload (sequential AVX512-style
// loads over a private buffer).
func SeqRead(base Addr, bytes int64) Generator { return workload.NewSeqRead(base, bytes) }

// SeqReadWrite returns the paper's C2M-ReadWrite workload (sequential
// stores: RFO reads plus eviction writebacks, 50/50 memory traffic).
func SeqReadWrite(base Addr, bytes int64) Generator { return workload.NewSeqReadWrite(base, bytes) }

// RandRead returns a GAPBS-PageRank-style uniform-random read stream.
func RandRead(base Addr, bytes int64, seed uint64) Generator {
	return workload.NewRandRead(base, bytes, seed)
}

// MixedRandom returns a random stream with the given write fraction and
// per-access compute gap.
func MixedRandom(base Addr, bytes int64, writeFrac float64, gap Time, seed uint64) Generator {
	return workload.NewMix(base, bytes, writeFrac, gap, seed)
}

// SeqMix returns a sequential stream where each line is stored (RFO read +
// writeback) with the given probability — the knob behind read/write-ratio
// sweeps.
func SeqMix(base Addr, bytes int64, writeFrac float64, seed uint64) Generator {
	return workload.NewSeqMix(base, bytes, writeFrac, seed)
}

// Trace is a replayable access sequence; Record and Replay make workloads
// portable across host configurations.
type Trace = workload.Trace

// Record wraps a generator, capturing up to limit accesses; retrieve the
// capture with the returned recorder's Trace method.
func Record(inner Generator, limit int) *workload.Recorder {
	return workload.NewRecorder(inner, limit)
}

// ReplayTrace replays a recorded trace, honoring its request spacing.
func ReplayTrace(t Trace, loop bool) Generator { return workload.NewReplay(t, loop) }

// BulkStorage returns the paper's bulk FIO workload (8 MB sequential
// requests, deep queue).
func BulkStorage(dir periph.Direction, base Addr) StorageConfig {
	return periph.BulkConfig(dir, base)
}

// ProbeStorage returns the low-load probe (4 KB requests at queue depth 1).
func ProbeStorage(dir periph.Direction, base Addr) StorageConfig {
	return periph.ProbeConfig(dir, base)
}

// CascadeLakeDomains returns the §4.2 characterization of the four domains.
func CascadeLakeDomains() [4]Domain { return core.CascadeLakeDomains() }

// Classify maps (C2M, P2M) degradation factors to a contention regime.
func Classify(c2mDegr, p2mDegr float64) Regime { return core.Classify(c2mDegr, p2mDegr) }

// Explain produces the causal narrative for a domain measurement pair.
func Explain(d Domain, loaded, unloaded Measurement) string {
	return core.Explain(d, loaded, unloaded)
}

// DefaultOptions returns the experiment defaults (Cascade Lake, DDIO off,
// 20 us warmup, 100 us window). Multi-point sweeps run on a worker pool
// sized by Options.Parallelism (default 0 = one worker per CPU); every
// sweep point builds its own Host and engine, so results are bit-identical
// at any parallelism — see WithParallelism.
func DefaultOptions() Options { return exp.Defaults() }

// WithParallelism returns opt with the sweep worker pool bounded to n
// workers: 1 forces serial execution, 0 restores the one-per-CPU default.
// Parallel and serial runs of the same experiment produce byte-identical
// output (the determinism tests in internal/exp pin this).
func WithParallelism(opt Options, n int) Options {
	opt.Parallelism = n
	return opt
}

// WithAudit returns opt with invariant auditing switched on or off for every
// host the experiment builds. Audited runs fail fast: any conservation
// violation panics with the domain, counter, and simulated timestamp.
// Auditing never schedules events or perturbs state, so results are
// identical either way; it only costs wall-clock time.
func WithAudit(opt Options, on bool) Options {
	opt.Audit = on
	return opt
}

// WithFaults returns opt with the fault schedule applied to every host the
// experiment builds. Fault windows run through the event engine, so faulted
// runs keep the determinism guarantees: bit-identical at any parallelism,
// identical with auditing on or off. An empty schedule restores healthy
// hosts at zero overhead.
func WithFaults(opt Options, s FaultSchedule) Options {
	opt.Faults = s
	return opt
}

// Experiment entry points, one per paper artifact. Each returns structured
// results; the matching Render* helper prints the same rows the paper
// reports.
var (
	RunFig3  = exp.RunFig3
	RunFig6  = exp.RunFig6
	RunFig11 = exp.RunFig11
	RunFig18 = exp.RunFig18
	RunFig19 = exp.RunFig19
	RunFig27 = exp.RunFig27
	RunFig29 = exp.RunFig29
	RunFig1  = exp.RunFig1
	RunFig2  = exp.RunFig2
	RunFig15 = exp.RunFig15
	RunFig16 = exp.RunFig16
	RunFig17 = exp.RunFig17

	RunQuadrant         = exp.RunQuadrant
	RunRDMAQuadrant     = exp.RunRDMAQuadrant
	RunFaultSweep       = exp.RunFaultSweep
	RunIncast           = exp.RunIncast
	RunDCTCP            = exp.RunDCTCP
	RunPrefetchStudy    = exp.RunPrefetchStudy
	RunHostCCStudy      = exp.RunHostCCStudy
	RunMCIsolationStudy = exp.RunMCIsolationStudy
)

// DefaultPrefetcher returns the L2-stream-prefetcher template; assign it to
// Config.Core.Prefetch to enable prefetching.
func DefaultPrefetcher() *Prefetcher { return cpu.DefaultPrefetcher() }

// NewHostCC builds a host congestion controller over a host's C2M cores;
// call Start before Run.
func NewHostCC(h *Host, cfg HostCCConfig) *HostCC {
	return hostcc.New(h.Eng, cfg, h.IIO, h.CHA, h.Cores)
}

// DefaultHostCCConfig returns the Cascade-Lake-tuned controller parameters.
func DefaultHostCCConfig() HostCCConfig { return hostcc.DefaultConfig() }

// Rendering helpers.
func RenderTable1(w io.Writer) { exp.RenderTable1(w) }
func RenderQuadrants(w io.Writer, res map[Quadrant][]exp.QuadrantPoint) {
	exp.RenderQuadrants(w, res)
}
func RenderDomainEvidence(w io.Writer, ev exp.DomainEvidence) { exp.RenderDomainEvidence(w, ev) }
func RenderFormula(w io.Writer, res map[Quadrant][]exp.FormulaPoint) {
	exp.RenderFormula(w, res)
}
func RenderRDMA(w io.Writer, res map[Quadrant][]exp.RDMAQuadrantPoint) { exp.RenderRDMA(w, res) }
func RenderDCTCP(w io.Writer, read, rw []exp.DCTCPPoint)               { exp.RenderDCTCP(w, read, rw) }
func RenderIncast(w io.Writer, s *IncastSweep)                         { exp.RenderIncast(w, s) }

// NewFabric assembles a rack of hosts behind a ToR switch on one engine.
func NewFabric(cfg FabricConfig) *Fabric { return fabric.New(cfg) }

// NewParallelFabric assembles a partitioned rack advanced by `workers`
// goroutines in conservative lookahead rounds. The configuration must be
// fault-free; results are byte-identical at any worker count.
func NewParallelFabric(cfg FabricConfig, workers int) *ParallelFabric {
	return fabric.NewParallel(cfg, workers)
}

// DefaultFabricConfig returns a Cascade Lake rack of `hosts` hosts on a
// 100 Gbps ToR.
func DefaultFabricConfig(hosts int) FabricConfig { return fabric.DefaultConfig(hosts) }
