// Package repro's root benchmark harness: one testing.B benchmark per table
// and figure in the paper's evaluation. Each benchmark regenerates its
// artifact on a reduced measurement window (so `go test -bench=.` stays
// tractable) and reports the headline numbers as custom metrics, making the
// shape of every result visible straight from the bench output:
//
//	go test -bench=. -benchmem
//
// The full-size regenerations (paper-scale windows, all data points) are in
// cmd/hostnetsim; EXPERIMENTS.md records a complete run.
package repro

import (
	"io"
	"testing"

	"repro/hostnet"
	"repro/internal/exp"
	"repro/internal/sim"
)

// benchOptions shrinks the measurement window so each bench iteration is
// cheap while preserving steady-state shapes.
func benchOptions() hostnet.Options {
	opt := hostnet.DefaultOptions()
	opt.Warmup = 10 * sim.Microsecond
	opt.Window = 40 * sim.Microsecond
	return opt
}

// benchWindowOpt returns the defaults at a custom reduced window (the app
// figures use their own window sizes).
func benchWindowOpt(window sim.Time) hostnet.Options {
	opt := hostnet.DefaultOptions()
	opt.Window = window
	return opt
}

// BenchmarkTable1Configs builds both testbed presets and runs a trivial
// workload on each (Table 1).
func BenchmarkTable1Configs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, cfg := range []hostnet.Config{hostnet.CascadeLake(), hostnet.IceLake()} {
			h := hostnet.New(cfg)
			h.AddCore(hostnet.SeqRead(h.Region(1<<30), 1<<30))
			h.Run(5*sim.Microsecond, 10*sim.Microsecond)
		}
	}
}

// quadrantBench runs one (quadrant, cores) point and reports degradations.
func quadrantBench(b *testing.B, q hostnet.Quadrant, cores int) {
	opt := benchOptions()
	var last exp.QuadrantPoint
	for i := 0; i < b.N; i++ {
		last = exp.RunQuadrantPoint(q, cores, opt)
	}
	b.ReportMetric(last.C2MDegradation(), "c2m-degr-x")
	b.ReportMetric(last.P2MDegradation(), "p2m-degr-x")
	b.ReportMetric(last.Co.MemC2M/1e9, "memC2M-GB/s")
	b.ReportMetric(last.Co.MemP2M/1e9, "memP2M-GB/s")
}

// BenchmarkFig3Quadrant1 .. 4: the blue/red regime quadrants (Fig 3) at the
// paper's most telling operating points.
func BenchmarkFig3Quadrant1(b *testing.B) { quadrantBench(b, hostnet.Q1, 1) }
func BenchmarkFig3Quadrant2(b *testing.B) { quadrantBench(b, hostnet.Q2, 6) }
func BenchmarkFig3Quadrant3(b *testing.B) { quadrantBench(b, hostnet.Q3, 5) }
func BenchmarkFig3Quadrant4(b *testing.B) { quadrantBench(b, hostnet.Q4, 6) }

// BenchmarkFig6DomainEvidence regenerates the §4.2 domain characterization.
func BenchmarkFig6DomainEvidence(b *testing.B) {
	opt := benchOptions()
	var ev exp.DomainEvidence
	for i := 0; i < b.N; i++ {
		ev = exp.RunFig6(opt)
	}
	b.ReportMetric(ev.UnloadedC2MRead, "c2m-read-ns")
	b.ReportMetric(ev.UnloadedC2MWrite, "c2m-write-ns")
	b.ReportMetric(ev.UnloadedP2MWrite, "p2m-write-ns")
	b.ReportMetric(float64(ev.LFBCredits), "lfb-credits")
	b.ReportMetric(float64(ev.IIOWriteCredits), "iio-wr-credits")
}

// BenchmarkFig7Quadrant1Probes regenerates the quadrant-1 root-cause probes.
func BenchmarkFig7Quadrant1Probes(b *testing.B) {
	opt := benchOptions()
	var pts []exp.QuadrantPoint
	for i := 0; i < b.N; i++ {
		pts = exp.RunQuadrant(exp.Q1, []int{1, 6}, opt)
	}
	b.ReportMetric(pts[0].Co.C2MLat, "lat-1core-ns")
	b.ReportMetric(pts[0].Co.RowMissC2MRead, "rowmiss-co")
	b.ReportMetric(pts[0].Co.BankDevFracGE15, "bankdev-ge1.5")
}

// BenchmarkFig8Quadrant3Probes regenerates the quadrant-3 root-cause probes.
func BenchmarkFig8Quadrant3Probes(b *testing.B) {
	opt := benchOptions()
	var pts []exp.QuadrantPoint
	for i := 0; i < b.N; i++ {
		pts = exp.RunQuadrant(exp.Q3, []int{5}, opt)
	}
	b.ReportMetric(pts[0].Co.WPQFullFrac, "wpq-full-frac")
	b.ReportMetric(pts[0].Co.WBacklog, "n-waiting")
	b.ReportMetric(pts[0].Co.P2MWriteLat, "p2m-write-ns")
	b.ReportMetric(pts[0].Co.CHAAdmitLat, "cha-admit-ns")
}

// BenchmarkFig11Formula validates the analytical model on one blue and one
// red point (Fig 11; the Fig 12 breakdown is inside the same computation).
func BenchmarkFig11Formula(b *testing.B) {
	opt := benchOptions()
	var blue, red exp.FormulaPoint
	for i := 0; i < b.N; i++ {
		blue = exp.ValidateFormula(exp.RunQuadrantPoint(exp.Q1, 2, opt), opt)
		red = exp.ValidateFormula(exp.RunQuadrantPoint(exp.Q3, 5, opt), opt)
	}
	b.ReportMetric(blue.C2MErrorPct, "q1-c2m-err-pct")
	b.ReportMetric(red.C2MErrorCHAPct, "q3-c2m-errCHA-pct")
	b.ReportMetric(red.P2MErrorPct, "q3-p2m-err-pct")
}

// BenchmarkFig12Breakdown reports the dominant formula components at the
// paper's reference points.
func BenchmarkFig12Breakdown(b *testing.B) {
	opt := benchOptions()
	var f exp.FormulaPoint
	for i := 0; i < b.N; i++ {
		f = exp.ValidateFormula(exp.RunQuadrantPoint(exp.Q1, 1, opt), opt)
	}
	b.ReportMetric(f.C2MBreakdown.WriteHoL, "writeHoL-ns")
	b.ReportMetric(f.C2MBreakdown.ReadHoL, "readHoL-ns")
	b.ReportMetric(f.C2MBreakdown.Switching, "switching-ns")
}

// BenchmarkFig13Quadrant2Probes / Fig14: the appendix quadrant deep dives.
func BenchmarkFig13Quadrant2Probes(b *testing.B) {
	opt := benchOptions()
	var pts []exp.QuadrantPoint
	for i := 0; i < b.N; i++ {
		pts = exp.RunQuadrant(exp.Q2, []int{6}, opt)
	}
	b.ReportMetric(pts[0].Co.P2MReadsInflight, "p2m-reads-inflight")
}

func BenchmarkFig14Quadrant4Probes(b *testing.B) {
	opt := benchOptions()
	var pts []exp.QuadrantPoint
	for i := 0; i < b.N; i++ {
		pts = exp.RunQuadrant(exp.Q4, []int{6}, opt)
	}
	b.ReportMetric(pts[0].Co.P2MReadsInflight, "p2m-reads-inflight")
	b.ReportMetric(pts[0].C2MDegradation(), "c2m-degr-x")
}

// BenchmarkFig1AppsIceLake: Redis and GAPBS against FIO on Ice Lake.
func BenchmarkFig1AppsIceLake(b *testing.B) {
	var res exp.Fig1Result
	for i := 0; i < b.N; i++ {
		res = exp.RunFig1(benchWindowOpt(30 * sim.Microsecond))
	}
	b.ReportMetric(res.Redis[1].AppDegradation(), "redis-degr-x")
	b.ReportMetric(res.GAPBS[1].AppDegradation(), "gapbs-degr-x")
	b.ReportMetric(res.GAPBS[1].P2MDegradation(), "fio-degr-x")
}

// BenchmarkFig2DDIO: the DDIO on/off comparison.
func BenchmarkFig2DDIO(b *testing.B) {
	var res exp.Fig2Result
	for i := 0; i < b.N; i++ {
		res = exp.RunFig2(benchWindowOpt(30 * sim.Microsecond))
	}
	last := len(res.GAPBSOn) - 1
	b.ReportMetric(res.GAPBSOn[last].AppDegradation(), "ddio-on-degr-x")
	b.ReportMetric(res.GAPBSOff[last].AppDegradation(), "ddio-off-degr-x")
}

// BenchmarkFig15 / 16 / 17: the Appendix B read/write-ratio grids.
func BenchmarkFig15AppsP2MWrite(b *testing.B) {
	var g exp.AppGridResult
	for i := 0; i < b.N; i++ {
		g = exp.RunFig15(benchWindowOpt(25 * sim.Microsecond))
	}
	b.ReportMetric(g.RedisOn[len(g.RedisOn)-1].AppDegradation(), "redisW-degr-x")
	b.ReportMetric(g.GAPBSOn[len(g.GAPBSOn)-1].AppDegradation(), "gapbsBC-degr-x")
}

func BenchmarkFig16AppsP2MRead(b *testing.B) {
	var g exp.AppGridResult
	for i := 0; i < b.N; i++ {
		g = exp.RunFig16(benchWindowOpt(25 * sim.Microsecond))
	}
	b.ReportMetric(g.RedisOn[len(g.RedisOn)-1].AppDegradation(), "redisR-degr-x")
	b.ReportMetric(g.GAPBSOn[len(g.GAPBSOn)-1].P2MDegradation(), "p2m-degr-x")
}

func BenchmarkFig17AppsP2MRead(b *testing.B) {
	var g exp.AppGridResult
	for i := 0; i < b.N; i++ {
		g = exp.RunFig17(benchWindowOpt(25 * sim.Microsecond))
	}
	b.ReportMetric(g.RedisOn[len(g.RedisOn)-1].AppDegradation(), "redisW-degr-x")
}

// BenchmarkFig18RDMA: the RoCE/PFC quadrants (Figs 18 and 20-24 share runs).
func BenchmarkFig18RDMA(b *testing.B) {
	opt := benchOptions()
	var blue, red []exp.RDMAQuadrantPoint
	for i := 0; i < b.N; i++ {
		blue = exp.RunRDMAQuadrant(exp.Q1, []int{3}, opt)
		red = exp.RunRDMAQuadrant(exp.Q3, []int{6}, opt)
	}
	b.ReportMetric(blue[0].C2MDegradation(), "q1-c2m-degr-x")
	b.ReportMetric(red[0].P2MDegradation(), "q3-roce-degr-x")
	b.ReportMetric(red[0].PauseFrac, "q3-pfc-pause-frac")
}

// BenchmarkFig23IIOOccupancy: microsecond-scale IIO occupancy under PFC.
func BenchmarkFig23IIOOccupancy(b *testing.B) {
	opt := benchOptions()
	var pts []exp.RDMAQuadrantPoint
	for i := 0; i < b.N; i++ {
		pts = exp.RunRDMAQuadrant(exp.Q3, []int{5}, opt)
	}
	near := 0
	for _, s := range pts[0].IIOOccSamples {
		if s >= 80 {
			near++
		}
	}
	b.ReportMetric(float64(near)/float64(len(pts[0].IIOOccSamples)), "near-full-frac")
}

// BenchmarkFig19DCTCP: the TCP case study (Figs 19, 25, 26 share runs).
func BenchmarkFig19DCTCP(b *testing.B) {
	opt := benchOptions()
	var read, rw []exp.DCTCPPoint
	for i := 0; i < b.N; i++ {
		read = exp.RunDCTCP(false, []int{2}, opt)
		rw = exp.RunDCTCP(true, []int{4}, opt)
	}
	b.ReportMetric(read[0].MemAppDegradation(), "read-mem-degr-x")
	b.ReportMetric(rw[0].NetAppDegradation(), "rw-net-degr-x")
}

// BenchmarkFig27RDMAFormula: formula validation on RDMA (Fig 28 breakdowns
// inside).
func BenchmarkFig27RDMAFormula(b *testing.B) {
	opt := benchOptions()
	var f exp.FormulaPoint
	for i := 0; i < b.N; i++ {
		pts := exp.RunRDMAQuadrant(exp.Q3, []int{5}, opt)
		f = exp.ValidateFormula(pts[0].QuadrantPoint, opt)
	}
	b.ReportMetric(f.C2MErrorCHAPct, "c2m-errCHA-pct")
	b.ReportMetric(f.P2MErrorPct, "p2m-err-pct")
}

// BenchmarkFig29DCTCPFormula: formula validation on DCTCP (Fig 30 inside).
func BenchmarkFig29DCTCPFormula(b *testing.B) {
	opt := benchOptions()
	var f exp.DCTCPFormulaPoint
	for i := 0; i < b.N; i++ {
		pts := exp.RunDCTCP(true, []int{3}, opt)
		f = exp.ValidateDCTCPFormula(pts[0], opt)
	}
	b.ReportMetric(f.MemErrPct, "mem-err-pct")
	b.ReportMetric(f.NetC2MErrPct, "net-c2m-err-pct")
	b.ReportMetric(f.NetP2MErrPct, "net-p2m-err-pct")
}

// BenchmarkDomainCharacterization reports the §4.2 credit/latency table via
// the core abstraction.
func BenchmarkDomainCharacterization(b *testing.B) {
	var bound float64
	for i := 0; i < b.N; i++ {
		for _, d := range hostnet.CascadeLakeDomains() {
			bound += d.MaxThroughput(d.UnloadedLatency)
		}
	}
	ds := hostnet.CascadeLakeDomains()
	b.ReportMetric(ds[0].MaxThroughput(ds[0].UnloadedLatency)/1e9, "c2m-read-bound-GB/s")
	b.ReportMetric(ds[3].MaxThroughput(ds[3].UnloadedLatency)/1e9, "p2m-write-bound-GB/s")
	_ = bound
}

// BenchmarkEngineThroughput measures raw simulator performance: events per
// second on a saturated Cascade Lake host.
func BenchmarkEngineThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := hostnet.New(hostnet.CascadeLake())
		for c := 0; c < 6; c++ {
			h.AddCore(hostnet.SeqRead(h.Region(1<<30), 1<<30))
		}
		h.AddStorage(hostnet.BulkStorage(hostnet.DMAWrite, h.Region(1<<30)))
		h.Run(0, 50*sim.Microsecond)
		b.ReportMetric(float64(h.Eng.Processed()), "events/op")
	}
}

var _ io.Writer // keep io imported for render smoke below

// BenchmarkRenderTables exercises the text-rendering path end to end.
func BenchmarkRenderTables(b *testing.B) {
	opt := benchOptions()
	res := map[hostnet.Quadrant][]exp.QuadrantPoint{
		exp.Q1: exp.RunQuadrant(exp.Q1, []int{1, 2}, opt),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp.RenderQuadrants(io.Discard, res)
	}
}
